// Benchmark harness: one testing.B benchmark per evaluation artifact of
// the paper. Each benchmark regenerates its figure at quick durations
// and reports the figure's headline quantity as custom metrics, so
//
//	go test -bench=. -benchmem
//
// re-derives the entire evaluation. The committed full-duration numbers
// live in EXPERIMENTS.md; use `go run ./cmd/ioctobench -fig all` to
// regenerate them.
package ioctopus_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"ioctopus"
	"ioctopus/internal/core"
	"ioctopus/internal/experiments"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// runFigure executes one experiment per benchmark iteration, failing
// the benchmark if any paper-shape check fails.
func runFigure(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Checks {
			if !c.Pass {
				b.Fatalf("shape check %q failed: %s", c.Name, c.Detail)
			}
		}
		last = res
	}
	return last
}

// BenchmarkFig02Trend regenerates the §2.6 NIC-vs-CPU trend dataset.
func BenchmarkFig02Trend(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig06RxThroughput regenerates Figure 6 (single-core TCP Rx
// sweep) and reports the local-vs-remote edge at 64 KB.
func BenchmarkFig06RxThroughput(b *testing.B) {
	runFigure(b, "fig6")
	local, remote := measureRxPair(b, 65536)
	b.ReportMetric(local, "local-Gb/s")
	b.ReportMetric(remote, "remote-Gb/s")
	b.ReportMetric(local/remote, "speedup")
}

// BenchmarkFig06MultiCore regenerates the §5.1.1 multi-core paragraph.
func BenchmarkFig06MultiCore(b *testing.B) { runFigure(b, "fig6-multicore") }

// BenchmarkFig07TxThroughput regenerates Figure 7 (single-core TCP Tx
// with TSO).
func BenchmarkFig07TxThroughput(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig08Pktgen regenerates Figure 8 (pktgen packet rates).
func BenchmarkFig08Pktgen(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig09Latency regenerates Figure 9 (TCP_RR ll/rr/llnd).
func BenchmarkFig09Latency(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10Memcached regenerates Figure 10 (memcached SET sweep).
func BenchmarkFig10Memcached(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11QPICongestionRx regenerates Figure 11 (TCP Rx vs STREAM
// pairs).
func BenchmarkFig11QPICongestionRx(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkFig12QPICongestionLat regenerates Figure 12 (UDP latency vs
// STREAM pairs).
func BenchmarkFig12QPICongestionLat(b *testing.B) { runFigure(b, "fig12") }

// BenchmarkFig13CoLocation regenerates Figure 13 (PageRank co-location).
func BenchmarkFig13CoLocation(b *testing.B) { runFigure(b, "fig13") }

// BenchmarkFig14Migration regenerates Figure 14 (per-PF throughput
// across a thread migration).
func BenchmarkFig14Migration(b *testing.B) { runFigure(b, "fig14") }

// BenchmarkFig15NVMe regenerates Figure 15 (fio vs STREAM on the UPI).
func BenchmarkFig15NVMe(b *testing.B) { runFigure(b, "fig15") }

// BenchmarkFig15OctoSSD regenerates the §5.4 OctoSSD extension.
func BenchmarkFig15OctoSSD(b *testing.B) { runFigure(b, "fig15-octossd") }

// BenchmarkAblationWiring regenerates the §3.2 wiring comparison.
func BenchmarkAblationWiring(b *testing.B) { runFigure(b, "ablation-wiring") }

// BenchmarkAblationIOctoSG regenerates the IOctoSG fragment-steering
// ablation (§3.3).
func BenchmarkAblationIOctoSG(b *testing.B) { runFigure(b, "ablation-sg") }

// BenchmarkAblationCoalescing regenerates the interrupt-moderation
// tradeoff.
func BenchmarkAblationCoalescing(b *testing.B) { runFigure(b, "ablation-window") }

// benchAllQuick regenerates every artifact at quick durations — the
// `ioctobench -fig all -quick` workload — with the harness bounded to
// the given parallelism and whole experiments fanned out the same way
// the CLI does.
func benchAllQuick(b *testing.B, par int) {
	b.Helper()
	old := ioctopus.Parallelism()
	ioctopus.SetParallelism(par)
	defer ioctopus.SetParallelism(old)
	ids := ioctopus.ExperimentIDs()
	for i := 0; i < b.N; i++ {
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if _, err := ioctopus.RunExperiment(id, ioctopus.QuickDurations()); err != nil {
					b.Error(err)
				}
			}(id)
		}
		wg.Wait()
	}
}

// BenchmarkAllFiguresQuickSerial is the `-fig all -quick` wall clock at
// -parallel 1.
func BenchmarkAllFiguresQuickSerial(b *testing.B) { benchAllQuick(b, 1) }

// BenchmarkAllFiguresQuickParallel is the same workload at the default
// parallelism (GOMAXPROCS); on a multi-core host the ratio to the
// serial benchmark is the harness fan-out speedup.
func BenchmarkAllFiguresQuickParallel(b *testing.B) { benchAllQuick(b, runtime.GOMAXPROCS(0)) }

// steadyStateCluster builds a single-core Rx streaming cluster and runs
// it past warm-up: pools populated, rings and buffers allocated, TCP
// window in regulation. Packet-path measurements start from here.
func steadyStateCluster() *core.Cluster {
	cl := ioctopus.NewCluster(ioctopus.Config{Mode: ioctopus.ModeIOctopus})
	workloads.StartStream(cl, workloads.StreamConfig{
		MsgSize: 65536, Direction: workloads.Rx,
		ServerCores: []topology.CoreID{0}, ServerIP: core.IPServerPF0,
	})
	cl.Run(20 * time.Millisecond)
	return cl
}

// TestPacketPathAllocFree guards the pooled datapath: once warm, a
// steady-state simulation window allocates nothing — packets, frames,
// DMA ops and ACK flights all come from free lists. The window is one
// simulated millisecond (~1300 events of full Rx segment round trips);
// the bound leaves room only for incidental runtime noise, not for any
// per-packet cost.
func TestPacketPathAllocFree(t *testing.T) {
	cl := steadyStateCluster()
	defer cl.Drain()
	allocs := testing.AllocsPerRun(5, func() {
		cl.Run(time.Millisecond)
	})
	if allocs > 2 {
		t.Fatalf("steady-state packet path allocates %.0f allocs/ms, want 0", allocs)
	}
}

// BenchmarkPacketPath measures the steady-state packet path alone: one
// simulated millisecond of single-core Rx streaming per iteration, with
// cluster construction excluded. Contrast with
// BenchmarkSimulatorEventRate, which includes construction per op.
func BenchmarkPacketPath(b *testing.B) {
	cl := steadyStateCluster()
	defer cl.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	events := cl.Eng.Executed
	for i := 0; i < b.N; i++ {
		cl.Run(time.Millisecond)
	}
	b.ReportMetric(float64(cl.Eng.Executed-events)/float64(b.N), "events/op")
}

// TestPoolingPreservesResults is the A/B regression gate for the packet
// pools: the same experiments, pooling on vs off, must render byte-
// identical results — pooling recycles model objects but must never
// change what the model computes.
func TestPoolingPreservesResults(t *testing.T) {
	render := func(id string) string {
		res, err := experiments.Run(id, experiments.Quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		return res.Render()
	}
	for _, id := range []string{"fig8", "fig9", "ablation-sg"} {
		pooled := render(id)
		nic.SetPooling(false)
		unpooled := render(id)
		nic.SetPooling(true)
		if pooled != unpooled {
			t.Errorf("%s: pooled and unpooled runs differ\npooled:\n%s\nunpooled:\n%s", id, pooled, unpooled)
		}
	}
}

// measureRxPair runs one local and one remote single-core Rx stream and
// returns their throughputs (the headline numbers of Figure 6).
func measureRxPair(b *testing.B, msg int64) (local, remote float64) {
	b.Helper()
	run := func(serverCore topology.CoreID) float64 {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
		defer cl.Drain()
		var received int64
		cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
			cl.Server.Kernel.Spawn("srv", serverCore, func(th *kernel.Thread) {
				s.SetOwner(th)
				for {
					n, _, ok := s.Recv(th)
					if !ok {
						return
					}
					received += n
				}
			})
		})
		cl.Client.Kernel.Spawn("cli", 0, func(th *kernel.Thread) {
			sock, err := cl.Client.Stack.Dial(th, core.IPServerPF0, 7, 6)
			if err != nil {
				panic(err)
			}
			for {
				sock.Send(th, msg)
			}
		})
		cl.Run(5 * time.Millisecond)
		base := received
		window := 15 * time.Millisecond
		cl.Run(window)
		return float64(received-base) * 8 / window.Seconds() / 1e9
	}
	return run(0), run(14)
}

// BenchmarkSimulatorEventRate measures the raw simulation speed of the
// full datapath: simulated-seconds of single-core Rx per wall second.
// Allocations are reported to guard the engine's free-list design; the
// residual allocs/op are model-layer closures, not the dispatch loop
// (see sim.TestScheduleDispatchAllocFree for the zero-alloc guarantee).
// events/sec is the headline dispatch rate BENCH_sim.json records per
// PR (it includes cluster construction; BenchmarkPacketPath isolates
// the steady state).
func BenchmarkSimulatorEventRate(b *testing.B) {
	benchEventRate(b, 1)
}

// BenchmarkSimulatorEventRateSharded runs the identical workload on the
// two-shard engine (one shard per simulated host). Output is
// byte-identical to the serial run — this benchmark exists to price the
// sharding, not to re-verify it: compare its events/sec against
// BenchmarkSimulatorEventRate on a multi-core host.
func BenchmarkSimulatorEventRateSharded(b *testing.B) {
	benchEventRate(b, 2)
}

func benchEventRate(b *testing.B, shards int) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cl := ioctopus.NewCluster(ioctopus.Config{Mode: ioctopus.ModeIOctopus, Shards: shards})
		w := workloads.StartStream(cl, workloads.StreamConfig{
			MsgSize: 65536, Direction: workloads.Rx,
			ServerCores: []topology.CoreID{0}, ServerIP: core.IPServerPF0,
		})
		cl.Run(20 * time.Millisecond)
		if w.Bytes() == 0 {
			w.MeasureStart()
		}
		if cl.Group != nil {
			events += cl.Group.Executed()
		} else {
			events += cl.Eng.Executed
		}
		cl.Drain()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
