#!/bin/sh
# Full verification gate: vet, build, race-check the concurrent pieces
# (the engine, the metrics registry and the parallel experiment
# harness), then the whole suite, then an end-to-end JSON report whose
# schema is validated before it is written (writeReport re-runs
# ValidateReport) and golden-checked by the experiments tests. CI and
# `make check` both run this.
set -eux

cd "$(dirname "$0")/.."

# Guard against editing this gate into a script that no longer parses.
sh -n scripts/check.sh

go vet ./...
go build ./...
# Repo-specific invariants (determinism, cross-shard scheduling, pool
# leases, metric names) plus reduced shadow/unusedwrite ports; findings
# need a fix or a justified //octolint:allow directive.
go run ./cmd/octolint
# The race pass covers the sharded engine: internal/sim carries the
# Group unit tests and internal/experiments carries TestShardDeterminism,
# which runs fig2 + chaos on concurrent shard goroutines.
# internal/driver rides along for the watchdog: its ladder and poller
# fallback tests exercise the recovery timers under the race detector.
go test -race ./internal/sim/... ./internal/metrics/... ./internal/experiments/... ./internal/faults/... ./internal/driver/...
go test ./...

# JSON schema gate: emit a real report and require it to validate.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/ioctobench -fig fig2 -quick -json "$tmp/report.json" > "$tmp/report.txt"
test -s "$tmp/report.json"

# Chaos determinism gate: the fault-injection run is a pure function of
# its seed — run it twice and require byte-identical text and JSON
# reports (report metadata carries no wall-clock fields by design).
go run ./cmd/ioctobench -fig chaos -quick -json "$tmp/chaos1.json" > "$tmp/chaos1.txt"
go run ./cmd/ioctobench -fig chaos -quick -json "$tmp/chaos2.json" > "$tmp/chaos2.txt"
cmp "$tmp/chaos1.txt" "$tmp/chaos2.txt"
cmp "$tmp/chaos1.json" "$tmp/chaos2.json"

# Shard determinism gate: the sharded engine must be an invisible
# optimization. Every figure plus the chaos run must render
# byte-identical text and JSON with -shards 2 (report metadata does not
# record the shard count, by design: same simulation, same report).
go run ./cmd/ioctobench -fig all -quick -json "$tmp/all_serial.json" > "$tmp/all_serial.txt"
go run ./cmd/ioctobench -fig all -quick -shards 2 -json "$tmp/all_sharded.json" > "$tmp/all_sharded.txt"
cmp "$tmp/all_serial.txt" "$tmp/all_sharded.txt"
cmp "$tmp/all_serial.json" "$tmp/all_sharded.json"
go run ./cmd/ioctobench -fig chaos -quick -shards 2 -json "$tmp/chaos_sharded.json" > "$tmp/chaos_sharded.txt"
cmp "$tmp/chaos1.txt" "$tmp/chaos_sharded.txt"
cmp "$tmp/chaos1.json" "$tmp/chaos_sharded.json"

# PMD determinism gate: the hidden kernel-bypass sweep (not part of
# `-fig all`, which stays byte-identical to the NAPI-only harness) must
# be as deterministic as everything else — busy-poll spin loops and
# hybrid mode-switches included — serial vs sharded.
go run ./cmd/ioctobench -fig pmd -quick -json "$tmp/pmd_serial.json" > "$tmp/pmd_serial.txt"
go run ./cmd/ioctobench -fig pmd -quick -shards 2 -json "$tmp/pmd_sharded.json" > "$tmp/pmd_sharded.txt"
cmp "$tmp/pmd_serial.txt" "$tmp/pmd_sharded.txt"
cmp "$tmp/pmd_serial.json" "$tmp/pmd_sharded.json"

# Device-chaos determinism gate: the firmware-reset / queue-stall /
# poller-stall sweep (hidden like pmd, so `-fig all` goldens are
# untouched) exercises every watchdog ladder rung and the PMD fallback
# path. Its recovery latencies must be a pure function of the seed:
# byte-identical across a double run and serial vs sharded.
go run ./cmd/ioctobench -fig devchaos -quick -json "$tmp/dev1.json" > "$tmp/dev1.txt"
go run ./cmd/ioctobench -fig devchaos -quick -json "$tmp/dev2.json" > "$tmp/dev2.txt"
cmp "$tmp/dev1.txt" "$tmp/dev2.txt"
cmp "$tmp/dev1.json" "$tmp/dev2.json"
go run ./cmd/ioctobench -fig devchaos -quick -shards 2 -json "$tmp/dev_sharded.json" > "$tmp/dev_sharded.txt"
cmp "$tmp/dev1.txt" "$tmp/dev_sharded.txt"
cmp "$tmp/dev1.json" "$tmp/dev_sharded.json"

# Scenario parity gate: the declarative specs must reproduce the
# hand-wired runners byte for byte — -scenario fig2/chaos is the same
# experiment expressed as data.
go run ./cmd/ioctobench -fig fig2 -quick > "$tmp/fig2_wired.txt"
go run ./cmd/ioctobench -scenario fig2 -quick > "$tmp/fig2_spec.txt"
cmp "$tmp/fig2_wired.txt" "$tmp/fig2_spec.txt"
go run ./cmd/ioctobench -scenario chaos -quick > "$tmp/chaos_spec.txt"
cmp "$tmp/chaos1.txt" "$tmp/chaos_spec.txt"

# Fuzz smoke gate: a pinned batch of generated scenarios must pass all
# declared invariants (exit 0) and replay byte-identically — both on a
# second run and under the sharded engine.
go run ./cmd/ioctobench -fuzz 8 -seed 1 > "$tmp/fuzz1.txt"
go run ./cmd/ioctobench -fuzz 8 -seed 1 > "$tmp/fuzz2.txt"
cmp "$tmp/fuzz1.txt" "$tmp/fuzz2.txt"
go run ./cmd/ioctobench -fuzz 8 -seed 1 -shards 2 > "$tmp/fuzz_sharded.txt"
cmp "$tmp/fuzz1.txt" "$tmp/fuzz_sharded.txt"

# Bench gate: the packet-path benchmarks must stay within the allocs/op
# thresholds recorded in BENCH_sim.json (the "gate" section).
evr_max="$(sed -n 's/.*"BenchmarkSimulatorEventRate_max_allocs_per_op": *\([0-9]*\).*/\1/p' BENCH_sim.json)"
pp_max="$(sed -n 's/.*"BenchmarkPacketPath_max_allocs_per_op": *\([0-9]*\).*/\1/p' BENCH_sim.json)"
bp_max="$(sed -n 's/.*"BenchmarkBusyPollPath_max_allocs_per_op": *\([0-9]*\).*/\1/p' BENCH_sim.json)"
if test -z "$evr_max" || test -z "$pp_max" || test -z "$bp_max"; then
    echo "check.sh: BENCH_sim.json is missing its gate keys" \
        "(BenchmarkSimulatorEventRate_max_allocs_per_op," \
        "BenchmarkPacketPath_max_allocs_per_op," \
        "BenchmarkBusyPollPath_max_allocs_per_op); regenerate with" \
        "'make bench' and restore the gate section" >&2
    exit 1
fi
# (The serial benchmark only: the Sharded variant's allocs scale with
# cross-shard traffic — its determinism is gated above, not its allocs.)
go test -run '^$' -bench 'BenchmarkPacketPath$|BenchmarkBusyPollPath$|BenchmarkSimulatorEventRate$' -benchtime 10x -benchmem . | tee "$tmp/bench.txt"
awk -v evr_max="$evr_max" -v pp_max="$pp_max" -v bp_max="$bp_max" '
  /^BenchmarkSimulatorEventRate(-|[ \t])/ { seen_evr = 1; a = $(NF-1) + 0
    if (a > evr_max) { printf "bench gate: SimulatorEventRate %d allocs/op > %d\n", a, evr_max; bad = 1 } }
  /^BenchmarkPacketPath/ { seen_pp = 1; a = $(NF-1) + 0
    if (a > pp_max) { printf "bench gate: PacketPath %d allocs/op > %d\n", a, pp_max; bad = 1 } }
  /^BenchmarkBusyPollPath/ { seen_bp = 1; a = $(NF-1) + 0
    if (a > bp_max) { printf "bench gate: BusyPollPath %d allocs/op > %d\n", a, bp_max; bad = 1 } }
  END {
    if (!seen_evr || !seen_pp || !seen_bp) { print "bench gate: benchmark output missing"; bad = 1 }
    exit bad
  }' "$tmp/bench.txt"
