#!/bin/sh
# Full verification gate: vet, build, race-check the concurrent pieces
# (the engine, the metrics registry and the parallel experiment
# harness), then the whole suite, then an end-to-end JSON report whose
# schema is validated before it is written (writeReport re-runs
# ValidateReport) and golden-checked by the experiments tests. CI and
# `make check` both run this.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./internal/sim/... ./internal/metrics/... ./internal/experiments/...
go test ./...

# JSON schema gate: emit a real report and require it to validate.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/ioctobench -fig fig2 -quick -json "$tmp/report.json" > "$tmp/report.txt"
test -s "$tmp/report.json"
