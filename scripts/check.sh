#!/bin/sh
# Full verification gate: vet, build, race-check the concurrent pieces
# (the engine, the metrics registry and the parallel experiment
# harness), then the whole suite, then an end-to-end JSON report whose
# schema is validated before it is written (writeReport re-runs
# ValidateReport) and golden-checked by the experiments tests. CI and
# `make check` both run this.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./internal/sim/... ./internal/metrics/... ./internal/experiments/... ./internal/faults/...
go test ./...

# JSON schema gate: emit a real report and require it to validate.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/ioctobench -fig fig2 -quick -json "$tmp/report.json" > "$tmp/report.txt"
test -s "$tmp/report.json"

# Chaos determinism gate: the fault-injection run is a pure function of
# its seed — run it twice and require byte-identical text and JSON
# reports (report metadata carries no wall-clock fields by design).
go run ./cmd/ioctobench -fig chaos -quick -json "$tmp/chaos1.json" > "$tmp/chaos1.txt"
go run ./cmd/ioctobench -fig chaos -quick -json "$tmp/chaos2.json" > "$tmp/chaos2.txt"
cmp "$tmp/chaos1.txt" "$tmp/chaos2.txt"
cmp "$tmp/chaos1.json" "$tmp/chaos2.json"

# Bench gate: the packet-path benchmarks must stay within the allocs/op
# thresholds recorded in BENCH_sim.json (the "gate" section).
evr_max="$(sed -n 's/.*"BenchmarkSimulatorEventRate_max_allocs_per_op": *\([0-9]*\).*/\1/p' BENCH_sim.json)"
pp_max="$(sed -n 's/.*"BenchmarkPacketPath_max_allocs_per_op": *\([0-9]*\).*/\1/p' BENCH_sim.json)"
test -n "$evr_max" && test -n "$pp_max"
go test -run '^$' -bench 'BenchmarkPacketPath$|BenchmarkSimulatorEventRate' -benchtime 10x -benchmem . | tee "$tmp/bench.txt"
awk -v evr_max="$evr_max" -v pp_max="$pp_max" '
  /^BenchmarkSimulatorEventRate/ { seen_evr = 1; a = $(NF-1) + 0
    if (a > evr_max) { printf "bench gate: SimulatorEventRate %d allocs/op > %d\n", a, evr_max; bad = 1 } }
  /^BenchmarkPacketPath/ { seen_pp = 1; a = $(NF-1) + 0
    if (a > pp_max) { printf "bench gate: PacketPath %d allocs/op > %d\n", a, pp_max; bad = 1 } }
  END {
    if (!seen_evr || !seen_pp) { print "bench gate: benchmark output missing"; bad = 1 }
    exit bad
  }' "$tmp/bench.txt"
