# Convenience targets; `make check` is the verification gate.

.PHONY: check test bench build lint

build:
	go build ./...

test:
	go test ./...

# Static invariants only (also part of `make check`): the octolint
# multichecker over the whole module.
lint:
	go run ./cmd/octolint

# vet + lint + build + race (sim, experiments) + full test suite.
check:
	./scripts/check.sh

# Regenerate the performance numbers behind BENCH_sim.json.
bench:
	go test -run '^$$' -bench 'BenchmarkPacketPath$$|BenchmarkSimulatorEventRate|BenchmarkAllFiguresQuick' -benchmem .
