# Convenience targets; `make check` is the verification gate.

.PHONY: check test bench build

build:
	go build ./...

test:
	go test ./...

# vet + build + race (sim, experiments) + full test suite.
check:
	./scripts/check.sh

# Regenerate the performance numbers behind BENCH_sim.json.
bench:
	go test -run '^$$' -bench 'BenchmarkPacketPath$$|BenchmarkSimulatorEventRate|BenchmarkAllFiguresQuick' -benchmem .
