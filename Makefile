# Convenience targets; `make check` is the verification gate.

.PHONY: check test bench build lint fuzz devchaos

build:
	go build ./...

test:
	go test ./...

# Static invariants only (also part of `make check`): the octolint
# multichecker over the whole module.
lint:
	go run ./cmd/octolint

# vet + lint + build + race (sim, experiments) + full test suite.
check:
	./scripts/check.sh

# Simulation fuzzing: run a batch of seeded random scenarios and fail
# on any invariant violation. Override the batch with SEED= and N=.
SEED ?= 1
N ?= 25
fuzz:
	go run ./cmd/ioctobench -fuzz $(N) -seed $(SEED)

# Device failure-domain sweep: firmware resets, queue stalls and poller
# wedges across the three datapaths, with windowed recovery checks.
devchaos:
	go run ./cmd/ioctobench -fig devchaos -quick

# Regenerate the performance numbers behind BENCH_sim.json.
bench:
	go test -run '^$$' -bench 'BenchmarkPacketPath$$|BenchmarkSimulatorEventRate|BenchmarkAllFiguresQuick' -benchmem .
