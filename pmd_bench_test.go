// Busy-poll datapath benchmarks and the interrupt-mode identity gate.
// The PMD path has its own steady-state harness because its cost
// structure differs from the NAPI path: no IRQs, no softirq, just the
// poll loop — but the zero-alloc discipline is the same and
// BenchmarkBusyPollPath gates it the way BenchmarkPacketPath gates the
// interrupt path (scripts/check.sh compares against BENCH_sim.json).
package ioctopus_test

import (
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"ioctopus"
	"ioctopus/internal/core"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// busyPollCluster builds a single-core Rx streaming cluster on the
// busy-poll datapath and runs it past warm-up: pollers spinning, pools
// populated, TCP window in regulation.
func busyPollCluster() *core.Cluster {
	cl := ioctopus.NewCluster(ioctopus.Config{
		Mode:     ioctopus.ModeIOctopus,
		Datapath: ioctopus.DatapathBusyPoll,
	})
	workloads.StartStream(cl, workloads.StreamConfig{
		MsgSize: 65536, Direction: workloads.Rx,
		ServerCores: []topology.CoreID{0}, ServerIP: core.IPServerPF0,
	})
	cl.Run(20 * time.Millisecond)
	return cl
}

// TestBusyPollPathAllocFree guards the poll-mode datapath: the spin
// loop, its burst closures and its work items are all built at
// construction, so a steady-state window allocates nothing.
func TestBusyPollPathAllocFree(t *testing.T) {
	cl := busyPollCluster()
	defer cl.Drain()
	allocs := testing.AllocsPerRun(5, func() {
		cl.Run(time.Millisecond)
	})
	if allocs > 2 {
		t.Fatalf("steady-state busy-poll path allocates %.0f allocs/ms, want 0", allocs)
	}
}

// BenchmarkBusyPollPath measures the steady-state poll-mode path: one
// simulated millisecond of single-core Rx streaming per iteration with
// cluster construction excluded. Events per op run well above the
// interrupt path's — every empty poll is an event — which is exactly
// the cost the busypoll column of `-fig pmd` shows as CPU.
func BenchmarkBusyPollPath(b *testing.B) {
	cl := busyPollCluster()
	defer cl.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	events := cl.Eng.Executed
	for i := 0; i < b.N; i++ {
		cl.Run(time.Millisecond)
	}
	b.ReportMetric(float64(cl.Eng.Executed-events)/float64(b.N), "events/op")
}

// TestInterruptModeMatchesGolden pins the default datapath's full
// evaluation — text and JSON — to the committed pre-PMD goldens: the
// poll-mode machinery must be byte-invisible until it is switched on.
// Environment-dependent metadata (Go version, harness parallelism) is
// normalized on both sides; everything else must match exactly.
func TestInterruptModeMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure at quick durations")
	}
	d := ioctopus.QuickDurations()
	ids := ioctopus.ExperimentIDs()
	var b strings.Builder
	results := make([]*ioctopus.ExperimentResult, 0, len(ids))
	for _, id := range ids {
		res, err := ioctopus.RunExperiment(id, d)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		results = append(results, res)
		b.WriteString(res.Render())
		b.WriteString("\n")
	}

	wantText, err := os.ReadFile("testdata/all_quick.txt")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(wantText) {
		t.Error("interrupt-mode `-fig all -quick` text diverges from testdata/all_quick.txt")
	}

	rep := ioctopus.NewReport(ids, true, d, results)
	rep.Registry = ioctopus.RegistrySnapshots(d)
	enc, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := os.ReadFile("testdata/all_quick.json")
	if err != nil {
		t.Fatal(err)
	}
	norm := func(s []byte) string {
		out := regexp.MustCompile(`"go_version": *"[^"]*"`).ReplaceAllString(string(s), `"go_version": "X"`)
		return regexp.MustCompile(`"parallelism": *[0-9]+`).ReplaceAllString(out, `"parallelism": 0`)
	}
	if norm(enc) != norm(wantJSON) {
		t.Error("interrupt-mode JSON report diverges from testdata/all_quick.json")
	}
}
