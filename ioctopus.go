// Package ioctopus is a full-system simulation of IOctopus (Smolyar et
// al., ASPLOS 2020): a device architecture that eliminates nonuniform
// DMA (NUDMA) by unifying one physical function per CPU socket into a
// single logical device, steered by flow (IOctoRFS) instead of by MAC.
//
// The library models the paper's entire testbed — dual-socket NUMA
// servers, QPI/UPI interconnect, LLC with DDIO, PCIe fabric with
// bifurcation, a multi-queue 100 GbE NIC with standard and IOctopus
// firmware, the Linux-like kernel/netstack/driver stack, NVMe storage,
// and every benchmark of the evaluation (netperf, pktgen, sockperf,
// memcached, STREAM, PageRank, fio) — as a deterministic discrete-event
// simulation.
//
// Quick start:
//
//	cl := ioctopus.NewCluster(ioctopus.Config{Mode: ioctopus.ModeIOctopus})
//	defer cl.Drain()
//	// drive workloads (see package workloads re-exports below), then
//	cl.Run(50 * time.Millisecond)
//
// Or reproduce a paper figure directly:
//
//	res, err := ioctopus.RunExperiment("fig6", ioctopus.FullDurations())
//	fmt.Println(res.Render())
package ioctopus

import (
	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/experiments"
	"ioctopus/internal/faults"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nvme"
	"ioctopus/internal/pcie"
	"ioctopus/internal/scenario"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// Thread is a simulated kernel thread; application code in examples and
// workloads runs on Threads and consumes CPU through them.
type Thread = kernel.Thread

// Socket is a connected TCP/UDP endpoint on a host's stack.
type Socket = netstack.Socket

// CoreID identifies a core; NodeID a NUMA node.
type (
	CoreID = topology.CoreID
	NodeID = topology.NodeID
)

// Transport protocol numbers for Dial.
const (
	ProtoTCP = eth.ProtoTCP
	ProtoUDP = eth.ProtoUDP
)

// Cluster is the two-machine testbed of §5: a dual-socket server with a
// bifurcated multi-PF NIC, cabled back-to-back to a client.
type Cluster = core.Cluster

// Config selects the cluster's NIC mode, wiring and knobs.
type Config = core.Config

// Host is one assembled machine (kernel, memory system, PCIe, stack).
type Host = core.Host

// NICMode selects the standard firmware (per-PF netdevices) or the
// IOctopus firmware (one netdevice, IOctoRFS steering).
type NICMode = core.NICMode

// NIC modes.
const (
	ModeStandard = core.ModeStandard
	ModeIOctopus = core.ModeIOctopus
)

// Well-known testbed addresses.
const (
	IPServerPF0 = core.IPServerPF0
	IPServerPF1 = core.IPServerPF1
	IPClient    = core.IPClient
)

// Wiring options for reaching multiple sockets (§3.2).
type Wiring = pcie.Wiring

// Wirings.
const (
	WiringBifurcated = pcie.WiringBifurcated
	WiringExtender   = pcie.WiringExtender
	WiringRiser      = pcie.WiringRiser
	WiringSwitch     = pcie.WiringSwitch
)

// NewCluster builds the testbed.
func NewCluster(cfg Config) *Cluster { return core.NewCluster(cfg) }

// NewClusterE builds the testbed, returning an error instead of
// panicking when the config describes an impossible machine (a PF with
// zero queues, a card wired to a socket the topology lacks, a
// malformed fault plan).
func NewClusterE(cfg Config) (*Cluster, error) { return core.NewClusterE(cfg) }

// ValidateConfig vets a cluster config without building it.
func ValidateConfig(cfg Config) error { return core.ValidateConfig(cfg) }

// StackParams are the netstack cost/behaviour knobs, settable per
// cluster via Config.StackParams (the chaos harness enables the
// retransmission timer there).
type StackParams = netstack.Params

// DefaultStackParams returns the calibrated netstack defaults.
func DefaultStackParams() StackParams { return netstack.DefaultParams() }

// Fault injection: a FaultPlan is a deterministic, seed-driven schedule
// of failures armed against the assembled cluster via Config.FaultPlan.
// The same seed and events replay byte-identically.
type (
	FaultPlan     = faults.Plan
	FaultEvent    = faults.Event
	FaultInjector = faults.Injector
)

// Fault kinds and wire directions.
const (
	FaultLinkDown = faults.LinkDown
	FaultLinkUp   = faults.LinkUp
	FaultLinkFlap = faults.LinkFlap
	FaultLoss     = faults.Loss
	FaultBurst    = faults.Burst
	FaultCorrupt  = faults.Corrupt
	FaultDegrade  = faults.Degrade
	FaultStall    = faults.Stall

	ClientToServer = faults.ClientToServer
	ServerToClient = faults.ServerToClient
)

// StorageRig is the §5.4 NVMe testbed.
type StorageRig = core.StorageRig

// StorageConfig configures it.
type StorageConfig = core.StorageConfig

// NVMe driver routing policies.
const (
	NVMeSinglePath = nvme.SinglePath
	NVMeOctoSSD    = nvme.OctoSSD
)

// NewStorageRig builds the storage testbed.
func NewStorageRig(cfg StorageConfig) *StorageRig { return core.NewStorageRig(cfg) }

// Topology constructors for custom setups.
var (
	// DualBroadwell is the paper's networking testbed machine.
	DualBroadwell = topology.DualBroadwell
	// DualSkylake is the paper's storage testbed machine.
	DualSkylake = topology.DualSkylake
	// QuadSocket is a four-socket machine (an octoNIC with four limbs).
	QuadSocket = topology.QuadSocket
)

// Workload re-exports: the benchmark programs of the evaluation.
type (
	// StreamConfig configures netperf TCP_STREAM instances.
	StreamConfig = workloads.StreamConfig
	// RRConfig configures netperf TCP_RR / sockperf ping-pong.
	RRConfig = workloads.RRConfig
	// PktgenConfig configures the in-kernel packet generator.
	PktgenConfig = workloads.PktgenConfig
	// MemcachedConfig configures memcached + memslap.
	MemcachedConfig = workloads.MemcachedConfig
	// AntagonistConfig configures STREAM memory antagonists.
	AntagonistConfig = workloads.AntagonistConfig
	// PageRankConfig configures the memory-bound PageRank victim.
	PageRankConfig = workloads.PageRankConfig
	// FioConfig configures the fio NVMe job.
	FioConfig = workloads.FioConfig
)

// Workload starters.
var (
	StartStream     = workloads.StartStream
	StartRR         = workloads.StartRR
	StartPktgen     = workloads.StartPktgen
	StartMemcached  = workloads.StartMemcached
	StartAntagonist = workloads.StartAntagonist
	StartPageRank   = workloads.StartPageRank
	StartFio        = workloads.StartFio
)

// Rx and Tx are stream directions (from the server's perspective).
const (
	Rx = workloads.Rx
	Tx = workloads.Tx
)

// ExperimentResult is one reproduced figure: tables, series, checks.
type ExperimentResult = experiments.Result

// Durations scales experiment windows.
type Durations = experiments.Durations

// QuickDurations returns short windows (tests, smoke runs).
func QuickDurations() Durations { return experiments.Quick() }

// FullDurations returns the windows the committed results use.
func FullDurations() Durations { return experiments.Full() }

// RunExperiment reproduces one paper figure by id (fig2, fig6..fig15,
// fig6-multicore, fig15-octossd, ablation-*).
func RunExperiment(id string, d Durations) (*ExperimentResult, error) {
	return experiments.Run(id, d)
}

// ExperimentIDs lists all reproducible artifacts. Hidden harnesses
// (the chaos fault-injection run) are runnable by name but not listed;
// HasExperiment accepts both.
func ExperimentIDs() []string { return experiments.IDs() }

// HasExperiment reports whether id names a runnable experiment,
// including hidden ones like "chaos" (CLI flag validation).
func HasExperiment(id string) bool { return experiments.Has(id) }

// Report is the versioned JSON export of an ioctobench run (schema
// "ioctobench-report", version 1): run metadata, per-figure results,
// and optional full-system registry snapshots.
type Report = experiments.Report

// RegistrySnapshot is one NIC mode's full-system telemetry dump.
type RegistrySnapshot = experiments.RegistrySnapshot

// NewReport assembles a report around computed results.
func NewReport(ids []string, quick bool, d Durations, results []*ExperimentResult) *Report {
	return experiments.NewReport(ids, quick, d, results)
}

// RegistrySnapshots runs the canonical smoke workload once per NIC
// mode and snapshots each cluster's metrics registry.
func RegistrySnapshots(d Durations) []RegistrySnapshot {
	return experiments.RegistrySnapshots(d)
}

// ValidateReport checks that data is a well-formed report of the
// current schema version.
func ValidateReport(data []byte) error { return experiments.ValidateReport(data) }

// Scenario is a declarative experiment: topology, NIC mode and wiring,
// workload mix, fault schedule, and checks, as validated data (a Go
// literal or a JSON file) instead of a hand-wired runner.
type Scenario = scenario.Spec

// LoadScenario resolves a -scenario argument: a builtin name
// (ScenarioNames lists them) or a path to a JSON spec file; the spec is
// validated before it is returned.
func LoadScenario(nameOrPath string) (*Scenario, error) { return scenario.Load(nameOrPath) }

// ParseScenario decodes and validates a JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// RunScenario executes a validated scenario. The run is a pure function
// of (spec, durations, Shards()): same inputs, byte-identical output.
func RunScenario(sp *Scenario, d Durations) (*ExperimentResult, error) {
	return scenario.Run(sp, d)
}

// GenerateScenario draws a random but always-valid scenario from a
// seed — the property-based "simulation fuzzing" entry point behind
// ioctobench -fuzz. Same seed, same spec, same run output.
func GenerateScenario(seed int64) *Scenario { return scenario.Generate(seed) }

// FuzzDurations returns the measurement windows fuzz runs use.
func FuzzDurations() Durations { return scenario.FuzzDurations() }

// ScenarioNames lists the builtin scenario specs (the declarative
// ports of fig2 and the chaos harness).
func ScenarioNames() []string { return scenario.Builtins() }

// SetParallelism bounds how many simulation points (independent
// clusters) the experiment harness runs concurrently. Results are
// deterministic at any level; the default is runtime.GOMAXPROCS(0).
func SetParallelism(n int) { experiments.SetParallelism(n) }

// Parallelism returns the current harness parallelism bound.
func Parallelism() int { return experiments.Parallelism() }

// SetShards sets how many engine shards every cluster the harness
// builds runs on: 1 is the serial engine, 2 puts each host of the
// testbed on its own goroutine with conservative link-latency
// synchronization. Results are byte-identical at any value; shard
// counts above the host count clamp.
func SetShards(n int) { experiments.SetShards(n) }

// Shards returns the per-cluster engine shard count.
func Shards() int { return experiments.Shards() }

// Datapath selects how completions reach the server's driver:
// interrupt (the default NAPI path), busypoll (dedicated poll-mode
// cores, no interrupts), or hybrid (adaptive polling with interrupt
// re-arm). See Config.Datapath and `ioctobench -datapath`.
type Datapath = core.Datapath

// Datapaths.
const (
	DatapathInterrupt = core.DatapathInterrupt
	DatapathBusyPoll  = core.DatapathBusyPoll
	DatapathHybrid    = core.DatapathHybrid
)

// ParseDatapath maps the CLI/scenario spelling ("", "interrupt",
// "busypoll", "hybrid") to a Datapath.
func ParseDatapath(s string) (Datapath, error) { return core.ParseDatapath(s) }

// SetDatapath sets the datapath every harness-built cluster runs with
// (the `ioctobench -datapath` axis). The default, DatapathInterrupt,
// is byte-identical to the pre-PMD harness.
func SetDatapath(d Datapath) { experiments.SetDatapath(d) }

// GetDatapath returns the harness datapath.
func GetDatapath() Datapath { return experiments.GetDatapath() }
